package cache

// AllocResult reports the outcome of an MSHR allocation attempt.
type AllocResult uint8

const (
	// AllocNew created a fresh entry: the caller must send a miss request
	// to the next level.
	AllocNew AllocResult = iota
	// AllocMerged attached the requester to an existing entry (a
	// secondary miss): no new request goes to the next level.
	AllocMerged
	// AllocFullEntries failed: the MSHR has no free entries. This is the
	// paper's "mshr" structural hazard.
	AllocFullEntries
	// AllocFullMerge failed: the target entry exists but its merge list
	// is full.
	AllocFullMerge
)

// String implements fmt.Stringer.
func (r AllocResult) String() string {
	switch r {
	case AllocNew:
		return "new"
	case AllocMerged:
		return "merged"
	case AllocFullEntries:
		return "full-entries"
	case AllocFullMerge:
		return "full-merge"
	default:
		return "unknown"
	}
}

// mshrSlot is one bucket of the MSHR's open-addressed table.
type mshrSlot[T any] struct {
	addr    uint64
	waiters []T
	live    bool
}

// MSHR is a miss-status holding register file: a fully associative table
// from outstanding miss line address to the requesters waiting on its fill.
// maxEntries ≤ 0 makes it unbounded (ideal modes); maxMerge ≤ 0 allows
// unlimited merging.
//
// The table is open-addressed with linear probing and backward-shift
// deletion: every lookup is a short scan over contiguous slots, replacing
// the runtime-map hashing that dominated the allocate/release hot path.
// Released waiter lists keep their backing arrays on an internal spare
// list, so steady-state allocate/release cycles are allocation-free.
type MSHR[T any] struct {
	slots      []mshrSlot[T] // power-of-two open-addressed table
	mask       uint64
	shift      uint // 64 - log2(len(slots)), for the multiplicative hash
	count      int
	spare      [][]T // backing arrays of released entries, ready for reuse
	maxEntries int
	maxMerge   int
}

// NewMSHR builds an MSHR with the given entry count and per-entry merge
// capacity (the primary miss counts toward the merge capacity).
func NewMSHR[T any](maxEntries, maxMerge int) *MSHR[T] {
	m := &MSHR[T]{maxEntries: maxEntries, maxMerge: maxMerge}
	cap := 16
	for maxEntries > 0 && cap < 2*maxEntries {
		cap <<= 1
	}
	m.grow(cap)
	return m
}

func (m *MSHR[T]) grow(newCap int) {
	old := m.slots
	m.slots = make([]mshrSlot[T], newCap)
	m.mask = uint64(newCap - 1)
	m.shift = 64 - uint(log2(newCap))
	for i := range old {
		if old[i].live {
			j := m.probe(old[i].addr)
			m.slots[j] = old[i]
		}
	}
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// home is the preferred slot for addr (Fibonacci multiplicative hash).
func (m *MSHR[T]) home(addr uint64) uint64 {
	return (addr * 0x9E3779B97F4A7C15) >> m.shift
}

// probe returns the first free slot for addr. Only valid when addr is not
// already present.
func (m *MSHR[T]) probe(addr uint64) uint64 {
	i := m.home(addr)
	for m.slots[i].live {
		i = (i + 1) & m.mask
	}
	return i
}

// lookup returns the slot holding addr, or ok=false if absent.
func (m *MSHR[T]) lookup(addr uint64) (uint64, bool) {
	i := m.home(addr)
	for m.slots[i].live {
		if m.slots[i].addr == addr {
			return i, true
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// remove vacates slot i, back-shifting any displaced followers so the
// probe chains stay unbroken (no tombstones).
func (m *MSHR[T]) remove(i uint64) {
	m.count--
	j := i
	for {
		j = (j + 1) & m.mask
		if !m.slots[j].live {
			break
		}
		// An element whose probe distance reaches back to the vacancy can
		// slide into it without becoming unreachable.
		if (j-m.home(m.slots[j].addr))&m.mask >= (j-i)&m.mask {
			m.slots[i] = m.slots[j]
			i = j
		}
	}
	m.slots[i] = mshrSlot[T]{}
}

// Len returns the number of live entries.
func (m *MSHR[T]) Len() int { return m.count }

// Full reports whether a new (non-merging) allocation would fail.
func (m *MSHR[T]) Full() bool {
	return m.maxEntries > 0 && m.count >= m.maxEntries
}

// Pending reports whether addr has an outstanding miss.
func (m *MSHR[T]) Pending(addr uint64) bool {
	_, ok := m.lookup(addr)
	return ok
}

// CanAccept reports whether Allocate(addr, …) would succeed, without
// performing it. Stall-attribution code uses it to classify a blocked
// request before committing resources.
func (m *MSHR[T]) CanAccept(addr uint64) bool {
	if i, ok := m.lookup(addr); ok {
		return m.maxMerge <= 0 || len(m.slots[i].waiters) < m.maxMerge
	}
	return !m.Full()
}

// Allocate records that item waits on the fill of addr. On AllocNew the
// caller must forward the miss to the next level; on AllocMerged it must
// not. The two failure results leave the MSHR unchanged.
func (m *MSHR[T]) Allocate(addr uint64, item T) AllocResult {
	if i, ok := m.lookup(addr); ok {
		if m.maxMerge > 0 && len(m.slots[i].waiters) >= m.maxMerge {
			return AllocFullMerge
		}
		m.slots[i].waiters = append(m.slots[i].waiters, item)
		return AllocMerged
	}
	if m.Full() {
		return AllocFullEntries
	}
	if 4*(m.count+1) > 3*len(m.slots) {
		m.grow(2 * len(m.slots))
	}
	var ws []T
	if n := len(m.spare); n > 0 {
		ws = m.spare[n-1][:0]
		m.spare = m.spare[:n-1]
	}
	i := m.probe(addr)
	m.slots[i] = mshrSlot[T]{addr: addr, waiters: append(ws, item), live: true}
	m.count++
	return AllocNew
}

// Waiters returns the requesters currently merged on addr without
// releasing them (primary first, in allocation order).
func (m *MSHR[T]) Waiters(addr uint64) []T {
	if i, ok := m.lookup(addr); ok {
		return m.slots[i].waiters
	}
	return nil
}

// Release completes the miss on addr, removing the entry and returning
// every waiter (primary first, in allocation order).
//
// The returned slice aliases a backing array the MSHR will reuse: it is
// valid only until the next Allocate. Callers consume it immediately (the
// fill path iterates the waiters and moves on), so no copy is made.
func (m *MSHR[T]) Release(addr uint64) []T {
	i, ok := m.lookup(addr)
	if !ok {
		return nil
	}
	waiters := m.slots[i].waiters
	m.slots[i].waiters = nil
	m.remove(i)
	m.spare = append(m.spare, waiters)
	return waiters
}
