// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark reports its headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. Wall-time results for the pinned subset live in
// BENCH.json at the repository root (regenerated via tools/benchguard and
// enforced by the CI benchmark-regression gate).
//
// Simulations are memoized in a shared runner: the 19 baseline runs feed
// Figs. 1, 4, 5, 7, 8, 9 and every speedup denominator, so the full
// suite runs each distinct (config, benchmark) pair exactly once.
package gpumembw_test

import (
	"sync"
	"testing"

	"gpumembw"
	"gpumembw/internal/config"
	"gpumembw/internal/exp"
	"gpumembw/internal/stats"
)

var (
	runnerOnce sync.Once
	runner     *exp.Scheduler
)

func sharedRunner() *exp.Scheduler {
	runnerOnce.Do(func() { runner = exp.NewScheduler() })
	return runner
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkFig1_StallsAndLatencies measures per-benchmark issue stalls,
// L2-AHL and AML on the baseline (paper AVG: 62%, 303, 452).
func BenchmarkFig1_StallsAndLatencies(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		var st, ahl, aml []float64
		for _, row := range rows {
			st = append(st, row.StallFrac)
			ahl = append(ahl, row.L2AHL)
			aml = append(aml, row.AML)
		}
		b.ReportMetric(100*avg(st), "stall-%")
		b.ReportMetric(avg(ahl), "L2-AHL-cycles")
		b.ReportMetric(avg(aml), "AML-cycles")
	}
}

// BenchmarkTableII_IdealMemory measures P∞ and P_DRAM speedups
// (paper AVG: 2.37 and 1.15).
func BenchmarkTableII_IdealMemory(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.TableII()
		if err != nil {
			b.Fatal(err)
		}
		var pinf, pdram []float64
		for _, row := range rows {
			pinf = append(pinf, row.PInf)
			pdram = append(pdram, row.PDRAM)
		}
		b.ReportMetric(avg(pinf), "Pinf-x")
		b.ReportMetric(avg(pdram), "Pdram-x")
	}
}

// BenchmarkFig3_LatencySweep sweeps the fixed L1 miss latency for the
// paper's representative benchmarks (plateau then decline).
func BenchmarkFig3_LatencySweep(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig3(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		var at0, at800 []float64
		for _, p := range pts {
			switch p.Latency {
			case 0:
				at0 = append(at0, p.NormIPC)
			case 800:
				at800 = append(at800, p.NormIPC)
			}
		}
		b.ReportMetric(avg(at0), "normIPC@0")
		b.ReportMetric(avg(at800), "normIPC@800")
	}
}

// BenchmarkFig4_L2QueueOccupancy measures how often L2 access queues are
// completely full (paper AVG: 46% of usage lifetime).
func BenchmarkFig4_L2QueueOccupancy(b *testing.B) {
	benchOccupancy(b, (*exp.Scheduler).Fig4)
}

// BenchmarkFig5_DRAMQueueOccupancy measures how often DRAM scheduler queues
// are completely full (paper AVG: 39%).
func BenchmarkFig5_DRAMQueueOccupancy(b *testing.B) {
	benchOccupancy(b, (*exp.Scheduler).Fig5)
}

func benchOccupancy(b *testing.B, fig func(*exp.Scheduler) ([]exp.OccupancyRow, error)) {
	b.Helper()
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		rows, err := fig(r)
		if err != nil {
			b.Fatal(err)
		}
		var full []float64
		for _, row := range rows {
			full = append(full, row.Fractions[stats.OccupancyBuckets-1])
		}
		b.ReportMetric(100*avg(full), "full-%")
	}
}

// BenchmarkFig6_StructuralHazard runs the MSHR=2 vs MSHR=32 illustration
// (examples/hazards) and reports the hazard slowdown.
func BenchmarkFig6_StructuralHazard(b *testing.B) {
	run := func(mshrs int) int64 {
		wl, err := gpumembw.WorkloadSpec{
			Name: "fig6", Iters: 4, LoadsPerIter: 4, ALUPerIter: 1,
			DepDist: 1, WarpsPerCore: 1, Seed: 1,
		}.Build()
		if err != nil {
			b.Fatal(err)
		}
		cfg := gpumembw.Baseline()
		cfg.Core.NumCores = 1
		cfg.Core.WarpsPerCore = 1
		cfg.L1.MSHREntries = mshrs
		m, err := gpumembw.Run(cfg, wl)
		if err != nil {
			b.Fatal(err)
		}
		return m.Cycles
	}
	for i := 0; i < b.N; i++ {
		small, large := run(2), run(32)
		b.ReportMetric(float64(small)/float64(large), "hazard-slowdown-x")
	}
}

// BenchmarkFig7_IssueStallTaxonomy reports the str-MEM share of issue
// stalls (paper AVG: 71%).
func BenchmarkFig7_IssueStallTaxonomy(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		var strMem []float64
		for _, row := range rows {
			strMem = append(strMem, row.Fractions[2])
		}
		b.ReportMetric(100*avg(strMem), "str-MEM-%")
	}
}

// BenchmarkFig8_L2StallTaxonomy reports the bp-ICNT share of L2 stalls
// (paper AVG: 42%).
func BenchmarkFig8_L2StallTaxonomy(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		var bpICNT []float64
		for _, row := range rows {
			bpICNT = append(bpICNT, row.Fractions[0])
		}
		b.ReportMetric(100*avg(bpICNT), "bp-ICNT-%")
	}
}

// BenchmarkFig9_L1StallTaxonomy reports the bp-L2 share of L1 stalls
// (paper AVG: 48%).
func BenchmarkFig9_L1StallTaxonomy(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		var bpL2 []float64
		for _, row := range rows {
			bpL2 = append(bpL2, row.Fractions[2])
		}
		b.ReportMetric(100*avg(bpL2), "bp-L2-%")
	}
}

// BenchmarkFig10_DesignSpace reports the average speedups of the six
// 4×-scaled design points (paper: L1 1.04, L2 1.59, DRAM 1.11, L1+L2 1.69,
// L2+DRAM 1.76, All 1.90).
func BenchmarkFig10_DesignSpace(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		rows, names, err := r.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		for c := range names {
			var sp []float64
			for _, row := range rows {
				sp = append(sp, row.Speedups[c])
			}
			b.ReportMetric(avg(sp), names[c]+"-x")
		}
	}
}

// BenchmarkFig11_CoreFrequency reports the wall-clock performance at
// 1.6 GHz relative to 1.4 GHz (paper, real GTX 480: bandwidth-bound
// benchmarks lose up to 10%).
func BenchmarkFig11_CoreFrequency(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		var hi, lo []float64
		for _, p := range pts {
			switch p.CoreMHz {
			case 1600:
				hi = append(hi, p.NormPerf)
			case 1200:
				lo = append(lo, p.NormPerf)
			}
		}
		b.ReportMetric(avg(hi), "perf@1.6GHz-x")
		b.ReportMetric(avg(lo), "perf@1.2GHz-x")
	}
}

// BenchmarkFig12_CostEffective reports the average speedups of the
// cost-effective configurations (paper: 16+48 1.234, 16+68 1.29,
// 32+52 1.257, HBM 1.11).
func BenchmarkFig12_CostEffective(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		rows, names, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		for c := range names {
			var sp []float64
			for _, row := range rows {
				sp = append(sp, row.Speedups[c])
			}
			b.ReportMetric(avg(sp), shortConfig(names[c])+"-x")
		}
	}
}

func shortConfig(s string) string {
	if len(s) > 14 {
		return s[len(s)-5:]
	}
	return s
}

// BenchmarkTableIII_AreaModel reports the §VII-C area overheads
// (paper: ≈1.1% storage-only, ≈1.6% with the wider crossbars).
func BenchmarkTableIII_AreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.AreaAnalysis()
		for _, row := range rows {
			if row.Config == "cost-effective-16+68" {
				b.ReportMetric(100*row.OverheadFrac, "16+68-die-%")
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed on the
// baseline configuration (cycles simulated per wall second), once for a
// Table II benchmark, once for a custom inline workload spec going
// through the full first-class spec path (validate, canonicalize,
// build), and once for a patched hardware configuration going through
// the full first-class config path (patch application, validation,
// canonicalization, ConfigID hashing) — the guard against regressions
// in Canonical/ConfigID on the inline-config build path.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.Run("bench=ii", func(b *testing.B) {
		wl, err := gpumembw.WorkloadByName("ii")
		if err != nil {
			b.Fatal(err)
		}
		benchThroughput(b, func() (gpumembw.Metrics, error) {
			return gpumembw.Run(config.Baseline(), wl)
		})
	})
	b.Run("spec=custom", func(b *testing.B) {
		spec := gpumembw.WorkloadSpec{
			Name: "bench-custom", WarpsPerCore: 32, Iters: 24,
			LoadsPerIter: 4, StoresPerIter: 1, ALUPerIter: 30,
			DepDist: 3, Pattern: gpumembw.PatHotShared,
			WorkingSetKB: 512, SharedKB: 32, SharedFrac: 0.5,
			StoreWindowLines: 16, Seed: 40,
		}
		benchThroughput(b, func() (gpumembw.Metrics, error) {
			return gpumembw.RunSpec(config.Baseline(), spec)
		})
	})
	b.Run("config=patched", func(b *testing.B) {
		patch := gpumembw.ConfigPatch{
			Base:  "baseline",
			Delta: []byte(`{"L1":{"MSHREntries":64,"MissQueueEntries":16}}`),
		}
		benchThroughput(b, func() (gpumembw.Metrics, error) {
			return gpumembw.RunPatch(patch, "ii")
		})
	})
}

func benchThroughput(b *testing.B, run func() (gpumembw.Metrics, error)) {
	b.Helper()
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := run()
		if err != nil {
			b.Fatal(err)
		}
		cycles = m.Cycles
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}
