module gpumembw

go 1.24
