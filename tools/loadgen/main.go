// Command loadgen drives a running gpusimd daemon with sustained
// concurrent traffic — a deterministic mix of single-cell submissions
// (preset, inline-spec and config-patch cells), submit-then-wait chains,
// sweeps and stats polls over a small content-addressed cell pool — and
// reports latency percentiles and an error breakdown as JSON. It is the
// CI load-smoke gate: exit status is nonzero when the p99 latency
// exceeds -p99-max, when more than -max-5xx server errors occur, or when
// -check-metrics finds /metrics and /v1/stats disagreeing at quiescence.
//
// Usage:
//
//	gpusimd -addr :8372 -cache-dir /tmp/cache -cache-max-bytes 2K &
//	loadgen -addr http://127.0.0.1:8372 -n 2000 -c 32 \
//	        -p99-max 1500ms -max-5xx 0 -check-metrics -trace-sample 10 \
//	        -out loadgen.json
//
// Rate-limited requests (429) back off per the daemon's Retry-After
// header and retry; they are reported but do not fail the gate — the
// throttle doing its job is not an error.
//
// -trace-sample N stamps a loadgen-chosen X-Trace-Id on one in N
// submissions; after quiescence each sampled job's span timeline is
// fetched and must be a complete, closed queued→…→terminal chain with
// monotonic starts, or the gate fails — the tracing pipeline is load
// tested alongside the data path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"gpumembw/client"
	"gpumembw/internal/metrics"
)

// cell is one entry of the load population.
type cell struct {
	kind string // "preset", "inline", "patch"
	spec client.JobSpec
}

// pool builds the mixed cell population. Inline specs are deliberately
// tiny (one warp, a few instructions) so a multi-thousand-request run is
// dominated by queueing, dedup and cache behavior, not simulation time.
func pool() []cell {
	tiny := func(i int) *client.WorkloadSpec {
		return &client.WorkloadSpec{Name: fmt.Sprintf("load-%d", i), WarpsPerCore: 1, Iters: 1 + i, ALUPerIter: 1}
	}
	patch := func(delta string) *client.ConfigPatch {
		return &client.ConfigPatch{Base: "baseline", Delta: json.RawMessage(delta)}
	}
	cells := []cell{
		{"preset", client.JobSpec{Config: "baseline", Bench: "dwt2d"}},
		{"patch", client.JobSpec{ConfigPatch: patch(`{"L1":{"MSHREntries":128}}`), Bench: "dwt2d"}},
	}
	for i := 0; i < 8; i++ {
		cells = append(cells, cell{"inline", client.JobSpec{Config: "baseline", InlineSpec: tiny(i)}})
	}
	for i := 0; i < 2; i++ {
		cells = append(cells, cell{"patch", client.JobSpec{ConfigPatch: patch(`{"L2":{"TagLatency":40}}`), InlineSpec: tiny(i)}})
	}
	return cells
}

// report is the JSON document loadgen emits.
type report struct {
	Requests    int     `json:"requests"`
	Ops         int     `json:"ops"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"durationSec"`
	Throughput  float64 `json:"requestsPerSec"`

	OpsByKind map[string]int `json:"opsByKind"`

	LatencyMs struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latencyMs"`

	Errors struct {
		Status4xx   int `json:"status4xx"`
		Status5xx   int `json:"status5xx"`
		Transport   int `json:"transport"`
		RateLimited int `json:"rateLimited"`
		WaitTimeout int `json:"waitTimeout"`
	} `json:"errors"`

	MetricsChecked  bool     `json:"metricsChecked"`
	MetricsMismatch string   `json:"metricsMismatch,omitempty"`
	TraceSampled    int      `json:"traceSampled,omitempty"`
	TraceReconciled int      `json:"traceReconciled,omitempty"`
	GateFailures    []string `json:"gateFailures,omitempty"`
	FinalStats      any      `json:"finalStats,omitempty"`
}

// worker state shared across the fleet.
type runner struct {
	c           *client.Client
	base        string
	opTimeout   time.Duration
	traceSample int // stamp a trace ID on 1 in traceSample submissions (0 = off)

	mu        sync.Mutex
	latencies []time.Duration
	requests  int
	e4xx      int
	e5xx      int
	transport int
	throttled int
	waitTO    int
	submits   int          // submissions issued, for the sampling cadence
	sampled   []sampledJob // jobs submitted with a loadgen trace ID
}

// sampledJob is one traced submission awaiting reconciliation.
type sampledJob struct {
	traceID string
	jobID   string
}

// record notes one HTTP interaction's latency and error class. 429s are
// retried by the caller; other errors are terminal for the op.
func (r *runner) record(d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	r.latencies = append(r.latencies, d)
	if err == nil {
		return
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		switch {
		case apiErr.StatusCode == http.StatusTooManyRequests:
			r.throttled++
		case apiErr.StatusCode >= 500:
			r.e5xx++
			fmt.Fprintf(os.Stderr, "loadgen: 5xx: %v\n", err)
		case apiErr.StatusCode >= 400:
			r.e4xx++
			fmt.Fprintf(os.Stderr, "loadgen: 4xx: %v\n", err)
		}
		return
	}
	r.transport++
	fmt.Fprintf(os.Stderr, "loadgen: transport: %v\n", err)
}

// timed runs one client call, recording its latency and classification.
func timed[T any](r *runner, call func() (T, error)) (T, error) {
	start := time.Now()
	v, err := call()
	r.record(time.Since(start), err)
	return v, err
}

// nextTraceID decides whether this submission is trace-sampled and, if
// so, mints its deterministic trace ID.
func (r *runner) nextTraceID() string {
	if r.traceSample <= 0 {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submits++
	if r.submits%r.traceSample != 0 {
		return ""
	}
	return fmt.Sprintf("loadgen-%06d", r.submits)
}

// submit issues one submission, backing off and retrying on 429 per the
// daemon's Retry-After hint. Trace-sampled submissions carry a loadgen
// trace ID and are remembered for post-run span-chain reconciliation.
func (r *runner) submit(ctx context.Context, spec client.JobSpec) (*client.Job, error) {
	traceID := r.nextTraceID()
	for attempt := 0; ; attempt++ {
		job, err := timed(r, func() (*client.Job, error) {
			if traceID != "" {
				return r.c.SubmitTraced(ctx, spec, traceID)
			}
			return r.c.Submit(ctx, spec)
		})
		if err == nil && traceID != "" && job != nil {
			r.mu.Lock()
			r.sampled = append(r.sampled, sampledJob{traceID: traceID, jobID: job.ID})
			r.mu.Unlock()
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests && attempt < 8 {
			backoff := apiErr.RetryAfter
			if backoff <= 0 {
				backoff = 100 * time.Millisecond
			}
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			select {
			case <-time.After(backoff):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return job, err
	}
}

// waitTerminal polls a job until it reaches a terminal state, recording
// every poll as a request.
func (r *runner) waitTerminal(ctx context.Context, id string) {
	deadline := time.Now().Add(r.opTimeout)
	for {
		job, err := timed(r, func() (*client.Job, error) { return r.c.Job(ctx, id) })
		if err != nil {
			return
		}
		if job.State.Terminal() {
			return
		}
		if time.Now().After(deadline) {
			r.mu.Lock()
			r.waitTO++
			r.mu.Unlock()
			fmt.Fprintf(os.Stderr, "loadgen: wait timeout on %s (state %s)\n", id, job.State)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// op runs the i-th operation of the deterministic mix.
func (r *runner) op(ctx context.Context, i int, cells []cell, kinds map[string]*int) {
	c := cells[i%len(cells)]
	switch i % 10 {
	case 0, 1, 2, 3:
		*kinds["submit"]++
		r.submit(ctx, c.spec) //nolint:errcheck // recorded by timed()
	case 4, 5, 6:
		*kinds["submit+wait"]++
		job, err := r.submit(ctx, c.spec)
		if err == nil && job != nil && !job.State.Terminal() {
			r.waitTerminal(ctx, job.ID)
		}
	case 7:
		*kinds["sweep"]++
		a := cells[i%len(cells)]
		b := cells[(i+3)%len(cells)]
		req := client.SweepRequest{Configs: []string{"baseline"}}
		for _, cc := range []cell{a, b} {
			if cc.spec.InlineSpec != nil {
				req.InlineSpecs = append(req.InlineSpecs, *cc.spec.InlineSpec)
			} else if cc.spec.Bench != "" {
				req.Benches = append(req.Benches, cc.spec.Bench)
			}
		}
		if len(req.Benches)+len(req.InlineSpecs) == 0 {
			req.Benches = []string{"dwt2d"}
		}
		timed(r, func() (*client.SweepResponse, error) { return r.c.Sweep(ctx, req) }) //nolint:errcheck
	case 8:
		*kinds["stats"]++
		timed(r, func() (*client.Stats, error) { return r.c.Stats(ctx) }) //nolint:errcheck
	case 9:
		*kinds["list"]++
		timed(r, func() ([]client.Job, error) { return r.c.Jobs(ctx) }) //nolint:errcheck
	}
}

func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// reconcileTraces fetches every sampled job's span timeline and checks
// it is complete: every span closed, starts monotonic, and the chain
// ending in a terminal marker. Runs after quiescence, so an open span
// means the tracing pipeline lost an event, not that work is in flight.
// Returns the distinct jobs checked plus one failure string per defect.
func (r *runner) reconcileTraces(ctx context.Context) (int, []string) {
	var failures []string
	seen := map[string]bool{}
	checked := 0
	for _, s := range r.sampled {
		if seen[s.jobID] {
			continue
		}
		seen[s.jobID] = true
		checked++
		tr, err := r.c.Trace(ctx, s.jobID)
		if err != nil {
			failures = append(failures, fmt.Sprintf("trace %s (job %s): %v", s.traceID, s.jobID, err))
			continue
		}
		if err := checkSpanChain(tr); err != nil {
			failures = append(failures, fmt.Sprintf("trace %s (job %s): %v", s.traceID, s.jobID, err))
		}
	}
	return checked, failures
}

// checkSpanChain validates one quiescent job's timeline. The job may
// predate the sampled submission (cells are content-addressed and
// deduplicated), so the trace ID is required to be present, not to
// equal the sampled one.
func checkSpanChain(tr *client.Trace) error {
	if tr.TraceID == "" {
		return fmt.Errorf("no trace ID on the timeline")
	}
	if len(tr.Spans) < 2 {
		return fmt.Errorf("span chain has %d spans, want >= 2 (queued + terminal)", len(tr.Spans))
	}
	switch last := tr.Spans[len(tr.Spans)-1]; last.Name {
	case "done", "failed", "canceled":
	default:
		return fmt.Errorf("chain ends in %q, not a terminal marker", last.Name)
	}
	for i, s := range tr.Spans {
		if s.End == nil {
			return fmt.Errorf("span %q still open after quiescence", s.Name)
		}
		if s.End.Before(s.Start) {
			return fmt.Errorf("span %q ends before it starts", s.Name)
		}
		if i > 0 && s.Start.Before(tr.Spans[i-1].Start) {
			return fmt.Errorf("span %q starts before its predecessor %q", s.Name, tr.Spans[i-1].Name)
		}
	}
	return nil
}

// quiesce polls /v1/stats until no job is queued or running.
func quiesce(ctx context.Context, c *client.Client, timeout time.Duration) (*client.Stats, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			return nil, err
		}
		if st.QueueDepth == 0 && st.Jobs["queued"] == 0 && st.Jobs["running"] == 0 {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("daemon not quiescent after %v: %+v", timeout, st.Jobs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkMetrics scrapes /metrics, validates the exposition strictly, and
// reconciles its counters against the quiescent /v1/stats view.
func checkMetrics(base string, st *client.Stats) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape: status %d", resp.StatusCode)
	}
	sc, err := metrics.Parse(body)
	if err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	check := func(name string, want float64, labels ...string) error {
		got, ok := sc.Value(name, labels...)
		if !ok {
			return fmt.Errorf("metric %s%v missing", name, labels)
		}
		if got != want {
			return fmt.Errorf("metric %s%v = %v, stats say %v", name, labels, got, want)
		}
		return nil
	}
	checks := []error{
		check("gpusimd_scheduler_simulated_total", float64(st.Scheduler.Simulated)),
		check("gpusimd_scheduler_memo_hits_total", float64(st.Scheduler.CacheHits)),
		check("gpusimd_scheduler_result_cache_hits_total", float64(st.Scheduler.DiskHits)),
		check("gpusimd_scheduler_sim_cycles_total", float64(st.Scheduler.SimCycles)),
		check("gpusimd_rate_limited_total", float64(st.RateLimited)),
		check("gpusimd_quota_denied_total", float64(st.QuotaDenied)),
		check("gpusimd_queue_depth", float64(st.QueueDepth)),
	}
	for state, n := range st.Jobs {
		checks = append(checks, check("gpusimd_jobs", float64(n), "state="+string(state)))
	}
	if st.CacheDir != "" {
		checks = append(checks,
			check("gpusimd_disk_cache_entries", float64(st.DiskCacheEntries)),
			check("gpusimd_disk_cache_bytes", float64(st.DiskCacheBytes)),
			check("gpusimd_disk_cache_evictions_total", float64(st.DiskCacheEvictions)))
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8372", "gpusimd base URL")
	n := flag.Int("n", 2000, "total operations to issue")
	conc := flag.Int("c", 32, "concurrent workers")
	p99Max := flag.Duration("p99-max", 0, "fail if p99 request latency exceeds this (0 = no gate)")
	max5xx := flag.Int("max-5xx", 0, "fail if more than this many 5xx responses occur")
	opTimeout := flag.Duration("op-timeout", 60*time.Second, "per-job wait deadline")
	out := flag.String("out", "", "also write the JSON report to this file")
	checkM := flag.Bool("check-metrics", false, "after quiescence, verify /metrics parses and reconciles with /v1/stats")
	traceSample := flag.Int("trace-sample", 0, "stamp a trace ID on 1 in N submissions and reconcile their span chains after the run (0 = off)")
	flag.Parse()

	ctx := context.Background()
	c := client.New(*addr)
	if err := c.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: daemon not reachable at %s: %v\n", *addr, err)
		os.Exit(2)
	}

	cells := pool()
	r := &runner{c: c, base: c.BaseURL(), opTimeout: *opTimeout, traceSample: *traceSample}
	kindCounts := map[string]*int{}
	for _, k := range []string{"submit", "submit+wait", "sweep", "stats", "list"} {
		kindCounts[k] = new(int)
	}
	var kindMu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < *n; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := map[string]*int{}
			for k := range kindCounts {
				local[k] = new(int)
			}
			for i := range next {
				r.op(ctx, i, cells, local)
			}
			kindMu.Lock()
			for k, v := range local {
				*kindCounts[k] += *v
			}
			kindMu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var rep report
	rep.Ops = *n
	rep.Concurrency = *conc
	rep.DurationSec = elapsed.Seconds()
	rep.OpsByKind = map[string]int{}
	for k, v := range kindCounts {
		rep.OpsByKind[k] = *v
	}
	r.mu.Lock()
	rep.Requests = r.requests
	rep.Errors.Status4xx = r.e4xx
	rep.Errors.Status5xx = r.e5xx
	rep.Errors.Transport = r.transport
	rep.Errors.RateLimited = r.throttled
	rep.Errors.WaitTimeout = r.waitTO
	lat := append([]time.Duration(nil), r.latencies...)
	r.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.LatencyMs.P50 = percentile(lat, 0.50)
	rep.LatencyMs.P90 = percentile(lat, 0.90)
	rep.LatencyMs.P99 = percentile(lat, 0.99)
	if len(lat) > 0 {
		rep.LatencyMs.Max = float64(lat[len(lat)-1]) / float64(time.Millisecond)
	}
	if rep.DurationSec > 0 {
		rep.Throughput = float64(rep.Requests) / rep.DurationSec
	}

	st, err := quiesce(ctx, c, 2*time.Minute)
	if err != nil {
		rep.GateFailures = append(rep.GateFailures, err.Error())
	}
	if st != nil {
		rep.FinalStats = st
	}
	if *checkM && st != nil {
		rep.MetricsChecked = true
		if err := checkMetrics(r.base, st); err != nil {
			rep.MetricsMismatch = err.Error()
			rep.GateFailures = append(rep.GateFailures, "metrics reconciliation: "+err.Error())
		}
	}
	if *traceSample > 0 {
		rep.TraceSampled = len(r.sampled)
		checked, failures := r.reconcileTraces(ctx)
		rep.TraceReconciled = checked
		for _, f := range failures {
			rep.GateFailures = append(rep.GateFailures, "trace reconciliation: "+f)
		}
		if rep.TraceSampled == 0 {
			rep.GateFailures = append(rep.GateFailures,
				fmt.Sprintf("trace sampling produced no samples across %d ops (1 in %d)", *n, *traceSample))
		}
	}
	if *p99Max > 0 && rep.LatencyMs.P99 > float64(*p99Max)/float64(time.Millisecond) {
		rep.GateFailures = append(rep.GateFailures,
			fmt.Sprintf("p99 %.1fms exceeds gate %v", rep.LatencyMs.P99, *p99Max))
	}
	if rep.Errors.Status5xx > *max5xx {
		rep.GateFailures = append(rep.GateFailures,
			fmt.Sprintf("%d server errors exceed gate %d", rep.Errors.Status5xx, *max5xx))
	}
	if rep.Errors.Transport > 0 {
		rep.GateFailures = append(rep.GateFailures,
			fmt.Sprintf("%d transport errors", rep.Errors.Transport))
	}
	// Every request loadgen issues is well-formed, so any non-429 client
	// error means the harness and the daemon disagree about the API.
	if rep.Errors.Status4xx > 0 {
		rep.GateFailures = append(rep.GateFailures,
			fmt.Sprintf("%d unexpected 4xx responses", rep.Errors.Status4xx))
	}
	if rep.Errors.WaitTimeout > 0 {
		rep.GateFailures = append(rep.GateFailures,
			fmt.Sprintf("%d jobs never reached a terminal state", rep.Errors.WaitTimeout))
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	fmt.Println(string(doc))
	if *out != "" {
		if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
	}
	if len(rep.GateFailures) > 0 {
		for _, f := range rep.GateFailures {
			fmt.Fprintln(os.Stderr, "loadgen: GATE FAILED:", f)
		}
		os.Exit(1)
	}
}
