// Command benchguard turns `go test -bench` output into a machine-readable
// BENCH.json and compares two such files, failing on wall-time regressions.
// CI runs the pinned benchmark subset on every PR, publishes the fresh
// BENCH.json as a workflow artifact, and compares it against the baseline
// committed at the repository root:
//
//	go test -run '^$' -bench <pinned> -benchmem ./... > bench.txt
//	benchguard parse -in bench.txt -out BENCH.new.json
//	benchguard compare -baseline BENCH.json -current BENCH.new.json
//
// The baseline is recorded on one machine and checked on another (a CI
// runner of unknown speed), so compare normalizes by the MEDIAN of the
// per-benchmark ns/op ratios — the machine-speed factor — and fails only
// benchmarks that regressed more than the threshold beyond that factor.
// A uniformly slower runner shifts every ratio equally and passes; a
// single benchmark whose ratio stands out against its siblings fails.
// The blind spot is a change that slows every benchmark in the suite by
// the same amount (the median moves with it) — the suite spans five
// packages to keep that unlikely. Pass -raw to compare absolute ns/op
// instead (same-machine baselines).
//
// Custom metrics reported via b.ReportMetric (sim-cycles/s, flits/cycle,
// row-hit-%, ...) are gated too, as higher-is-better rates: a metric that
// drops more than the threshold below its baseline fails the comparison.
// Wall-clock rates like sim-cycles/s scale inversely with machine speed,
// so on a runner slower than the baseline machine (factor > 1) the floor
// is relaxed by that same factor; per-sim-cycle metrics are deterministic
// and unaffected. A baseline metric that disappears from the current run
// also fails — losing the measurement is losing the gate. Every benchmark
// and metric is printed with its signed delta, so an intentional speedup
// shows up as an explicit +NN% line to quote when refreshing the baseline.
//
// Benchmarks may carry job labels as sub-benchmark names
// ("BenchmarkSimulatorThroughput/bench=ii", ".../spec=custom"); each
// labelled entry is parsed and compared independently, with only the
// trailing -GOMAXPROCS suffix stripped. A baseline entry whose benchmark
// has since been split into labelled sub-benchmarks is reported as SPLIT
// (its coverage moved, not vanished) instead of failing as MISSING;
// refresh the baseline to adopt the labelled names.
//
// Refresh the committed baseline after an intentional performance change
// by replacing BENCH.json with the parse output.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH.json schema.
type File struct {
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

const note = "benchmark baseline; regenerate with: go test -run '^$' -bench <pinned subset> -benchmem ./... | go run ./tools/benchguard parse"

// benchLine matches one `go test -bench` result line; the -N GOMAXPROCS
// suffix is stripped so results compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

// metricPair matches one trailing "<value> <unit>" measurement.
var metricPair = regexp.MustCompile(`\s+([\d.e+-]+) (\S+)`)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchguard parse [-in bench.txt] [-out BENCH.json]
  benchguard compare -baseline BENCH.json [-current BENCH.json] [-threshold 0.20] [-raw]`)
	os.Exit(2)
}

// boolFlag extracts "-name" from args, returning presence and the rest.
func boolFlag(args []string, name string) (bool, []string) {
	for i, a := range args {
		if a == "-"+name {
			return true, append(append([]string{}, args[:i]...), args[i+1:]...)
		}
	}
	return false, args
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

// flagValue extracts "-name value" from args, returning the remaining args.
func flagValue(args []string, name, def string) (string, []string) {
	for i := 0; i+1 < len(args); i++ {
		if args[i] == "-"+name {
			return args[i+1], append(append([]string{}, args[:i]...), args[i+2:]...)
		}
	}
	return def, args
}

func cmdParse(args []string) {
	inPath, args := flagValue(args, "in", "")
	outPath, args := flagValue(args, "out", "")
	if len(args) != 0 {
		usage()
	}

	var in io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	text, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}

	out := File{Note: note, Benchmarks: map[string]Result{}}
	for _, line := range strings.Split(string(text), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimRight(line, "\r"))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			fatal(fmt.Errorf("line %q: %w", line, err))
		}
		r := Result{NsPerOp: ns}
		for _, pm := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pm[1], 64)
			if err != nil {
				continue
			}
			switch pm[2] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[pm[2]] = v
			}
		}
		if _, dup := out.Benchmarks[name]; dup {
			fatal(fmt.Errorf("duplicate benchmark name %q (did the subset run with -count > 1?)", name))
		}
		out.Benchmarks[name] = r
	}
	if len(out.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}

	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fatal(err)
	}
}

// subBenchmarks returns the sorted labelled entries under name
// ("BenchmarkFoo" -> "BenchmarkFoo/bench=ii", ...).
func subBenchmarks(benchmarks map[string]Result, name string) []string {
	var subs []string
	for n := range benchmarks {
		if strings.HasPrefix(n, name+"/") {
			subs = append(subs, n)
		}
	}
	sort.Strings(subs)
	return subs
}

func readFile(path string) File {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return f
}

func cmdCompare(args []string) {
	basePath, args := flagValue(args, "baseline", "")
	curPath, args := flagValue(args, "current", "")
	thresholdStr, args := flagValue(args, "threshold", "0.20")
	raw, args := boolFlag(args, "raw")
	if basePath == "" || len(args) != 0 {
		usage()
	}
	threshold, err := strconv.ParseFloat(thresholdStr, 64)
	if err != nil {
		fatal(err)
	}
	base := readFile(basePath)
	cur := base
	if curPath != "" {
		cur = readFile(curPath)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	// The machine-speed factor: the median ns/op ratio across the suite.
	// Comparing each benchmark against it cancels out how much faster or
	// slower this machine is than the one that recorded the baseline.
	factor := 1.0
	if !raw {
		var ratios []float64
		for _, n := range names {
			if c, ok := cur.Benchmarks[n]; ok && base.Benchmarks[n].NsPerOp > 0 {
				ratios = append(ratios, c.NsPerOp/base.Benchmarks[n].NsPerOp)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			factor = ratios[len(ratios)/2]
		}
		fmt.Printf("machine-speed factor (median ratio): %.2fx — flagging benchmarks beyond %.2fx\n\n",
			factor, factor*(1+threshold))
	}

	// Wall-clock rate metrics (per real second) scale inversely with the
	// machine-speed factor; on a slower runner the regression floor drops
	// with it. A faster runner only raises rates, so the floor never
	// tightens beyond the plain threshold.
	metricFloor := (1 - threshold) / math.Max(1, factor)

	failed := false
	fmt.Printf("%-40s %14s %14s %9s\n", "benchmark", "baseline", "current", "delta")
	for _, n := range names {
		b := base.Benchmarks[n]
		c, ok := cur.Benchmarks[n]
		if !ok {
			// A benchmark refactored into labelled sub-benchmarks still
			// has coverage under "<name>/..."; there is no like-for-like
			// ratio to check, so report the split without failing.
			if split := subBenchmarks(cur.Benchmarks, n); len(split) > 0 {
				fmt.Printf("%-40s %14.1f %14s %9s  SPLIT into %s (refresh the baseline)\n",
					n, b.NsPerOp, "-", "-", strings.Join(split, ", "))
				continue
			}
			fmt.Printf("%-40s %14.1f %14s %9s  MISSING\n", n, b.NsPerOp, "-", "-")
			failed = true
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		verdict := ""
		if ratio > factor*(1+threshold) {
			verdict = fmt.Sprintf("  REGRESSION (>%.0f%% beyond the suite median)", 100*threshold)
			failed = true
		}
		fmt.Printf("%-40s %14.1f %14.1f %9s%s\n", n, b.NsPerOp, c.NsPerOp, signedDelta(ratio), verdict)

		// Custom metrics, higher-is-better.
		for _, mn := range metricNames(b.Metrics, c.Metrics) {
			bv, inBase := b.Metrics[mn]
			cv, inCur := c.Metrics[mn]
			row := "  " + mn
			switch {
			case !inBase:
				fmt.Printf("%-40s %14s %14.4g %9s  new (not in baseline)\n", row, "-", cv, "-")
			case !inCur:
				fmt.Printf("%-40s %14.4g %14s %9s  MISSING metric\n", row, bv, "-", "-")
				failed = true
			case bv == 0:
				fmt.Printf("%-40s %14.4g %14.4g %9s\n", row, bv, cv, "-")
			default:
				r := cv / bv
				verdict := ""
				if r < metricFloor {
					verdict = fmt.Sprintf("  REGRESSION (metric dropped >%.0f%% below baseline)", 100*threshold)
					failed = true
				}
				fmt.Printf("%-40s %14.4g %14.4g %9s%s\n", row, bv, cv, signedDelta(r), verdict)
			}
		}
	}
	for n := range cur.Benchmarks {
		if _, ok := base.Benchmarks[n]; !ok {
			fmt.Printf("%-40s %14s %14.1f %9s  new (not in baseline)\n", n, "-", cur.Benchmarks[n].NsPerOp, "-")
		}
	}
	if failed {
		fmt.Println("\nFAIL: regression against the committed baseline.")
		fmt.Println("If intentional, refresh BENCH.json (see tools/benchguard docs).")
		os.Exit(1)
	}
	fmt.Println("\nOK: no benchmark or metric regressed beyond the threshold.")
}

// signedDelta renders a current/baseline ratio as an explicit signed
// percentage ("+101.1%", "-3.2%", "+0.0%").
func signedDelta(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", 100*(ratio-1))
}

// metricNames returns the sorted union of the two metric maps' keys.
func metricNames(a, b map[string]float64) []string {
	set := map[string]bool{}
	for n := range a {
		set[n] = true
	}
	for n := range b {
		set[n] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
