// Package client is the typed Go client for gpusimd, the simulation
// daemon (internal/server). It speaks the versioned wire types of
// internal/api, re-exported here as aliases so callers outside the module
// can name them.
//
//	c := client.New("http://127.0.0.1:8372")
//	job, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: "mm"})
//	job, err = c.Wait(ctx, job.ID, 200*time.Millisecond)
//	fmt.Println(job.Metrics.IPC)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/config"
	"gpumembw/internal/trace"
)

// Wire types, aliased from the API package.
type (
	// Job is the server's view of one submitted simulation cell.
	Job = api.Job
	// JobSpec names one cell: a preset name, inline config or config
	// patch, plus a workload (benchmark name or inline WorkloadSpec).
	JobSpec = api.JobSpec
	// JobState is the job lifecycle state.
	JobState = api.JobState
	// SweepRequest is a config×workload cross product to submit.
	SweepRequest = api.SweepRequest
	// SweepResponse reports the sweep expansion and its deduplication.
	SweepResponse = api.SweepResponse
	// Stats is the daemon's scheduler counters and queue gauges.
	Stats = api.Stats
	// WorkloadSpec is an inline synthetic-kernel spec for
	// JobSpec.InlineSpec / SweepRequest.InlineSpecs.
	WorkloadSpec = trace.Spec
	// HardwareConfig is a full inline hardware configuration for
	// JobSpec.InlineConfig / SweepRequest.InlineConfigs.
	HardwareConfig = config.Config
	// ConfigPatch is a sparse mitigation-knob overlay on a named preset
	// for JobSpec.ConfigPatch / SweepRequest.ConfigPatches.
	ConfigPatch = config.Patch
)

// Job lifecycle states.
const (
	JobQueued   = api.JobQueued
	JobRunning  = api.JobRunning
	JobDone     = api.JobDone
	JobFailed   = api.JobFailed
	JobCanceled = api.JobCanceled
)

// APIError is a non-2xx daemon response. RetryAfter carries the
// Retry-After header of a 429 (rate limit or per-client quota), when the
// daemon sent one; zero otherwise.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gpusimd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Client talks to one gpusimd daemon. The zero value is not usable; use New.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the daemon at baseURL, e.g.
// "http://127.0.0.1:8372".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request; in (if non-nil) is sent as JSON, out (if
// non-nil) receives the decoded 2xx body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr api.Error
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if json.Unmarshal(data, &apiErr) != nil || apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(data))
		}
		e := &APIError{StatusCode: resp.StatusCode, Message: apiErr.Error}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
		return e
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks GET /healthz.
// BaseURL returns the daemon address the client talks to (no trailing
// slash), e.g. for scraping its /metrics endpoint directly.
func (c *Client) BaseURL() string { return c.base }

func (c *Client) Health(ctx context.Context) error {
	var h api.Health
	return c.do(ctx, http.MethodGet, "/healthz", nil, &h)
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit enqueues one cell (POST /v1/jobs). Submitting a cell the daemon
// already knows returns the existing job, possibly already done.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job polls one job (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists every job in submission order (GET /v1/jobs).
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var list api.JobList
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &list); err != nil {
		return nil, err
	}
	return list.Jobs, nil
}

// Cancel cancels a queued job (DELETE /v1/jobs/{id}).
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Sweep submits a config×workload cross product (POST /v1/sweeps).
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	var resp SweepResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Benchmarks lists benchmark names in Table II order (GET /v1/benchmarks).
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	var list api.BenchmarkList
	if err := c.do(ctx, http.MethodGet, "/v1/benchmarks", nil, &list); err != nil {
		return nil, err
	}
	return list.Benchmarks, nil
}

// Configs lists every preset as its full canonical configuration,
// sorted by name (GET /v1/configs) — the starting point for authoring
// inline configs and patches against a remote daemon.
func (c *Client) Configs(ctx context.Context) ([]HardwareConfig, error) {
	var list api.ConfigList
	if err := c.do(ctx, http.MethodGet, "/v1/configs", nil, &list); err != nil {
		return nil, err
	}
	return list.Configs, nil
}

// ConfigNames lists the preset names accepted by JobSpec.Config, sorted.
func (c *Client) ConfigNames(ctx context.Context) ([]string, error) {
	configs, err := c.Configs(ctx)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(configs))
	for i, cfg := range configs {
		names[i] = cfg.Name
	}
	return names, nil
}

// Wait polls the job every poll interval (default 200ms when <= 0) until
// it reaches a terminal state or ctx is done.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits one cell and waits for its terminal state — the blocking
// convenience around Submit + Wait.
func (c *Client) Run(ctx context.Context, spec JobSpec, poll time.Duration) (*Job, error) {
	j, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if j.State.Terminal() {
		return j, nil
	}
	return c.Wait(ctx, j.ID, poll)
}
