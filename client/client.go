// Package client is the typed Go client for gpusimd, the simulation
// daemon (internal/server). It speaks the versioned wire types of
// internal/api, re-exported here as aliases so callers outside the module
// can name them.
//
//	c := client.New("http://127.0.0.1:8372")
//	job, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: "mm"})
//	job, err = c.Wait(ctx, job.ID, 200*time.Millisecond)
//	fmt.Println(job.Metrics.IPC)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/config"
	"gpumembw/internal/obsv"
	"gpumembw/internal/trace"
)

// Wire types, aliased from the API package.
type (
	// Job is the server's view of one submitted simulation cell.
	Job = api.Job
	// JobSpec names one cell: a preset name, inline config or config
	// patch, plus a workload (benchmark name or inline WorkloadSpec).
	JobSpec = api.JobSpec
	// JobState is the job lifecycle state.
	JobState = api.JobState
	// SweepRequest is a config×workload cross product (or explicit cell
	// list) to submit.
	SweepRequest = api.SweepRequest
	// SweepResponse reports the sweep expansion and its deduplication.
	SweepResponse = api.SweepResponse
	// Sweep is the sweep resource: per-cell jobs, state counts, and the
	// merged speedup table once complete.
	Sweep = api.Sweep
	// SweepState is the sweep lifecycle state.
	SweepState = api.SweepState
	// JobList is one page of a job listing.
	JobList = api.JobList
	// Stats is the daemon's scheduler counters and queue gauges.
	Stats = api.Stats
	// ClusterStatus is a coordinator's worker table.
	ClusterStatus = api.ClusterStatus
	// WorkerStatus is one worker's health as the coordinator sees it.
	WorkerStatus = api.WorkerStatus
	// WorkloadSpec is an inline synthetic-kernel spec for
	// JobSpec.InlineSpec / SweepRequest.InlineSpecs.
	WorkloadSpec = trace.Spec
	// HardwareConfig is a full inline hardware configuration for
	// JobSpec.InlineConfig / SweepRequest.InlineConfigs.
	HardwareConfig = config.Config
	// ConfigPatch is a sparse mitigation-knob overlay on a named preset
	// for JobSpec.ConfigPatch / SweepRequest.ConfigPatches.
	ConfigPatch = config.Patch
	// JobProfile is GET /v1/jobs/{id}/profile: the hierarchy bottleneck
	// profile of a Profile=true run.
	JobProfile = api.JobProfile
	// Profile is the windowed per-level time series plus bottleneck
	// verdict inside a JobProfile.
	Profile = obsv.Profile
	// Trace is GET /v1/jobs/{id}/trace: the job's lifecycle span timeline.
	Trace = api.Trace
	// Span is one lifecycle span inside a Trace.
	Span = api.Span
)

// TraceHeader is the X-Trace-Id request/response header the daemon and
// coordinator use to correlate a request with their structured logs.
const TraceHeader = api.TraceHeader

// Job lifecycle states.
const (
	JobQueued   = api.JobQueued
	JobRunning  = api.JobRunning
	JobDone     = api.JobDone
	JobFailed   = api.JobFailed
	JobCanceled = api.JobCanceled
)

// Sweep lifecycle states.
const (
	SweepRunning = api.SweepRunning
	SweepDone    = api.SweepDone
	SweepFailed  = api.SweepFailed
)

// Machine-readable error codes carried by APIError.Code.
const (
	CodeInvalidArgument   = api.CodeInvalidArgument
	CodeNotFound          = api.CodeNotFound
	CodeConflict          = api.CodeConflict
	CodeResourceExhausted = api.CodeResourceExhausted
	CodeUnavailable       = api.CodeUnavailable
	CodeInternal          = api.CodeInternal
)

// APIError is a non-2xx daemon response, decoded from the uniform
// api.Error envelope. Code is the machine-readable error code
// (CodeNotFound, CodeResourceExhausted, ...); against a pre-envelope
// daemon it is derived from the HTTP status. RetryAfter carries the
// retry hint of a 429/503 (envelope field or Retry-After header), when
// the daemon sent one; zero otherwise.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gpusimd: %s (HTTP %d, %s)", e.Message, e.StatusCode, e.Code)
}

// Client talks to one gpusimd daemon. The zero value is not usable; use New.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the daemon at baseURL, e.g.
// "http://127.0.0.1:8372".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request; in (if non-nil) is sent as JSON, out (if
// non-nil) receives the decoded 2xx body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	_, err := c.doHeader(ctx, method, path, in, out)
	return err
}

// doHeader is do plus the response headers of the 2xx (long-poll
// capability detection reads them).
func (c *Client) doHeader(ctx context.Context, method, path string, in, out any) (http.Header, error) {
	return c.doFull(ctx, method, path, in, out, nil)
}

// doFull is doHeader plus caller-set request headers (trace IDs).
func (c *Client) doFull(ctx context.Context, method, path string, in, out any, hdr map[string]string) (http.Header, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp.Header, decodeError(resp)
	}
	if out == nil {
		return resp.Header, nil
	}
	return resp.Header, json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an *APIError. It decodes
// the uniform envelope {code, detail, retryAfter}; bodies from
// pre-envelope daemons ({"error": ...}) or foreign proxies (plain text)
// degrade to a message with a status-derived code.
func decodeError(resp *http.Response) error {
	e := &APIError{StatusCode: resp.StatusCode}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var apiErr api.Error
	if json.Unmarshal(data, &apiErr) == nil && apiErr.Detail != "" {
		e.Code = apiErr.Code
		e.Message = apiErr.Detail
		e.RetryAfter = time.Duration(apiErr.RetryAfter) * time.Second
	} else {
		var legacy struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &legacy) == nil && legacy.Error != "" {
			e.Message = legacy.Error
		} else {
			e.Message = strings.TrimSpace(string(data))
		}
	}
	if e.Code == "" {
		e.Code = api.CodeForStatus(resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		e.RetryAfter = time.Duration(secs) * time.Second
	}
	return e
}

// Health checks GET /healthz.
// BaseURL returns the daemon address the client talks to (no trailing
// slash), e.g. for scraping its /metrics endpoint directly.
func (c *Client) BaseURL() string { return c.base }

func (c *Client) Health(ctx context.Context) error {
	var h api.Health
	return c.do(ctx, http.MethodGet, "/healthz", nil, &h)
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit enqueues one cell (POST /v1/jobs). Submitting a cell the daemon
// already knows returns the existing job, possibly already done.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// SubmitTraced is Submit with a caller-chosen X-Trace-Id: the job (and
// the daemon's structured logs) adopt the given correlation ID instead
// of a server-minted one. Load generators stamp sampled operations this
// way and later assert the full span chain came back.
func (c *Client) SubmitTraced(ctx context.Context, spec JobSpec, traceID string) (*Job, error) {
	var j Job
	if _, err := c.doFull(ctx, http.MethodPost, "/v1/jobs", spec, &j, map[string]string{TraceHeader: traceID}); err != nil {
		return nil, err
	}
	return &j, nil
}

// Profile fetches a finished Profile=true job's hierarchy bottleneck
// profile (GET /v1/jobs/{id}/profile). Jobs that are not yet done — or
// that ran unprofiled — answer 404 not_found.
func (c *Client) Profile(ctx context.Context, id string) (*JobProfile, error) {
	var p JobProfile
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/profile", nil, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// Trace fetches a job's lifecycle span timeline (GET /v1/jobs/{id}/trace).
// Unlike Profile it exists from submission on; against a coordinator the
// timeline additionally carries the placement hop.
func (c *Client) Trace(ctx context.Context, id string) (*Trace, error) {
	var t Trace
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", nil, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// Job polls one job (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists every job (GET /v1/jobs), sorted by submission time.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	list, err := c.ListJobs(ctx, ListOptions{})
	if err != nil {
		return nil, err
	}
	return list.Jobs, nil
}

// ListOptions filter and page a job listing.
type ListOptions struct {
	// State keeps only jobs in that state; "" keeps all.
	State JobState
	// Limit caps the page size; 0 means unbounded (one page holds all).
	Limit int
	// PageToken resumes a listing after a previous page's NextPageToken.
	PageToken string
}

// ListJobs fetches one page of GET /v1/jobs. Jobs are sorted by
// (submission time, ID) — a stable total order — and a non-empty
// NextPageToken on the result resumes the listing where the page ended.
func (c *Client) ListJobs(ctx context.Context, opts ListOptions) (*JobList, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", string(opts.State))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.PageToken != "" {
		q.Set("page_token", opts.PageToken)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var list JobList
	if err := c.do(ctx, http.MethodGet, path, nil, &list); err != nil {
		return nil, err
	}
	return &list, nil
}

// Cancel cancels a queued job (DELETE /v1/jobs/{id}).
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Sweep submits a config×workload cross product — or an explicit cell
// list — as one sweep (POST /v1/sweeps). The response carries the
// content-addressed sweep ID; GetSweep and WaitSweep track it.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	var resp SweepResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// GetSweep polls one sweep resource (GET /v1/sweeps/{id}).
func (c *Client) GetSweep(ctx context.Context, id string) (*Sweep, error) {
	var sw Sweep
	if err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id), nil, &sw); err != nil {
		return nil, err
	}
	return &sw, nil
}

// Benchmarks lists benchmark names in Table II order (GET /v1/benchmarks).
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	var list api.BenchmarkList
	if err := c.do(ctx, http.MethodGet, "/v1/benchmarks", nil, &list); err != nil {
		return nil, err
	}
	return list.Benchmarks, nil
}

// Configs lists every preset as its full canonical configuration,
// sorted by name (GET /v1/configs) — the starting point for authoring
// inline configs and patches against a remote daemon.
func (c *Client) Configs(ctx context.Context) ([]HardwareConfig, error) {
	var list api.ConfigList
	if err := c.do(ctx, http.MethodGet, "/v1/configs", nil, &list); err != nil {
		return nil, err
	}
	return list.Configs, nil
}

// ConfigNames lists the preset names accepted by JobSpec.Config, sorted.
func (c *Client) ConfigNames(ctx context.Context) ([]string, error) {
	configs, err := c.Configs(ctx)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(configs))
	for i, cfg := range configs {
		names[i] = cfg.Name
	}
	return names, nil
}

// waitRound is the server-side deadline a Wait/WaitSweep long-poll
// round asks for; the server clamps longer asks, so staying at its cap
// wastes nothing.
const waitRound = 30 * time.Second

// longPollHeader is the response header a long-poll-capable daemon sets
// on job and sweep GETs; its absence selects the polling fallback.
const longPollHeader = "Gpusimd-Long-Poll"

// jitter spreads d over [d/2, 3d/2) so a fleet of clients that lost
// their long-poll rounds at once (a daemon drain, a proxy restart) does
// not re-poll in lockstep.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// Wait blocks until the job reaches a terminal state or ctx is done.
//
// Against a long-poll-capable daemon it parks on GET /v1/jobs/{id}?wait=
// rounds — no fixed-interval polling, near-zero request overhead, and an
// immediate return on the terminal transition. When the daemon answers a
// round early without a terminal state (graceful drain does this), the
// next round starts after a jittered pause so a restarting daemon is not
// stampeded. Against daemons that predate long-poll (detected via the
// capability header on the first response) it degrades to jittered
// interval polling every ~poll (default 200ms when <= 0).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	j, err := waitResource[Job](ctx, c, "/v1/jobs/"+url.PathEscape(id), poll,
		func(j *Job) bool { return j.State.Terminal() })
	if err != nil {
		return nil, err
	}
	return j, nil
}

// WaitSweep is Wait's sweep twin: it blocks on GET /v1/sweeps/{id} until
// the sweep is terminal (every cell done, or any failed/canceled) or ctx
// is done, with the same long-poll-first, jittered-fallback behavior.
func (c *Client) WaitSweep(ctx context.Context, id string, poll time.Duration) (*Sweep, error) {
	return waitResource[Sweep](ctx, c, "/v1/sweeps/"+url.PathEscape(id), poll,
		func(sw *Sweep) bool { return sw.State.Terminal() })
}

// waitResource is the shared long-poll loop behind Wait and WaitSweep.
func waitResource[T any](ctx context.Context, c *Client, path string, poll time.Duration, terminal func(*T) bool) (*T, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	longPoll := true
	for {
		p := path
		if longPoll {
			p += "?wait=" + waitRound.String()
		}
		start := time.Now()
		var v T
		hdr, err := c.doHeader(ctx, http.MethodGet, p, nil, &v)
		if err != nil {
			return nil, err
		}
		if terminal(&v) {
			return &v, nil
		}
		if longPoll && hdr.Get(longPollHeader) == "" {
			// The daemon ignored ?wait= and answered immediately: a
			// pre-long-poll build, or a proxy that stripped the header.
			// Fall back to interval polling for the rest of this wait.
			longPoll = false
		}
		if !longPoll || time.Since(start) < waitRound/2 {
			// Interval polling, or a long-poll round the server ended
			// early (drain): pause with jitter before the next request.
			select {
			case <-ctx.Done():
				return &v, ctx.Err()
			case <-time.After(jitter(poll)):
			}
		} else if ctx.Err() != nil {
			return &v, ctx.Err()
		}
	}
}

// Cluster fetches a coordinator's worker table (GET /v1/cluster).
// Single daemons answer 404 not_found.
func (c *Client) Cluster(ctx context.Context) (*ClusterStatus, error) {
	var cs ClusterStatus
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &cs); err != nil {
		return nil, err
	}
	return &cs, nil
}

// Drain marks a coordinator's worker as draining (true) or serving
// (false): a draining worker keeps answering reads but receives no new
// placements, and its unfinished jobs move to the remaining workers
// (POST /v1/cluster/drain).
func (c *Client) Drain(ctx context.Context, workerAddr string, drain bool) (*ClusterStatus, error) {
	var cs ClusterStatus
	if err := c.do(ctx, http.MethodPost, "/v1/cluster/drain", api.DrainRequest{Addr: workerAddr, Drain: drain}, &cs); err != nil {
		return nil, err
	}
	return &cs, nil
}

// Run submits one cell and waits for its terminal state — the blocking
// convenience around Submit + Wait.
func (c *Client) Run(ctx context.Context, spec JobSpec, poll time.Duration) (*Job, error) {
	j, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if j.State.Terminal() {
		return j, nil
	}
	return c.Wait(ctx, j.ID, poll)
}
