package client

import (
	"context"
	"net/http"
	"net/url"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/config"
)

// Design-space exploration wire types, aliased from the API package.
type (
	// ExploreRequest describes a search over the mitigation knob space
	// (POST /v1/explore): workloads, a base preset, an objective, and —
	// optionally — a custom knob lattice (default: the Table III ladder).
	ExploreRequest = api.ExploreRequest
	// ExploreObjective is the search goal: target-speedup ≥ X minimizing
	// area, or area-budget ≤ Y mm² maximizing speedup.
	ExploreObjective = api.ExploreObjective
	// ExploreKnob is one custom lattice axis: a dotted knob path and its
	// candidate values.
	ExploreKnob = api.ExploreKnob
	// Exploration is the exploration resource: per-round progress while
	// running; Pareto frontier and recommended point once done.
	Exploration = api.Exploration
	// ExplorationState is the exploration lifecycle state.
	ExplorationState = api.ExplorationState
	// ExplorePoint is one frontier point: its knob assignments, measured
	// speedup and area cost.
	ExplorePoint = api.ExplorePoint
	// ExploreRound is one completed search round's summary.
	ExploreRound = api.ExploreRound
	// Knob is one entry of the knob-space model (GET /v1/knobs): a dotted
	// path, its type, bounds and baseline value.
	Knob = config.Knob
)

// Exploration lifecycle states.
const (
	ExplorationRunning = api.ExplorationRunning
	ExplorationDone    = api.ExplorationDone
	ExplorationFailed  = api.ExplorationFailed
)

// Explore starts (or joins) a design-space exploration (POST
// /v1/explore). Explorations are content-addressed by their canonical
// request: re-posting the same search — however spelled — returns the
// same resource, already finished if it ran before.
func (c *Client) Explore(ctx context.Context, req ExploreRequest) (*Exploration, error) {
	var ex Exploration
	if err := c.do(ctx, http.MethodPost, "/v1/explore", req, &ex); err != nil {
		return nil, err
	}
	return &ex, nil
}

// GetExploration polls one exploration resource (GET /v1/explorations/{id}).
func (c *Client) GetExploration(ctx context.Context, id string) (*Exploration, error) {
	var ex Exploration
	if err := c.do(ctx, http.MethodGet, "/v1/explorations/"+url.PathEscape(id), nil, &ex); err != nil {
		return nil, err
	}
	return &ex, nil
}

// WaitExploration blocks until the exploration is terminal or ctx is
// done, with the same long-poll-first, jittered-fallback behavior as
// Wait and WaitSweep.
func (c *Client) WaitExploration(ctx context.Context, id string, poll time.Duration) (*Exploration, error) {
	return waitResource[Exploration](ctx, c, "/v1/explorations/"+url.PathEscape(id), poll,
		func(ex *Exploration) bool { return ex.State.Terminal() })
}

// Knobs fetches the mitigation knob-space model (GET /v1/knobs): every
// dotted Set path with its type, validation bounds and baseline value.
func (c *Client) Knobs(ctx context.Context) ([]Knob, error) {
	var list api.KnobList
	if err := c.do(ctx, http.MethodGet, "/v1/knobs", nil, &list); err != nil {
		return nil, err
	}
	return list.Knobs, nil
}
